//! Cost-based planning is an *optimization*, never a semantics change:
//! for any query, the costed pipeline (statistics, join reordering,
//! access multipliers) must return exactly what the heuristic pipeline
//! returns — only the plan shape and the EXPLAIN report may differ.
//!
//! Also pins the EXPLAIN surface itself: the `explain` stage reports the
//! chosen join order, estimated vs. actual rows, and whether record
//! pruning was an index seek or a linear sweep.

mod common;

use common::{figure1_repo, TestRepo, FIGURE1_Q1, FIGURE1_Q2};
use lazyetl::store::Value;
use lazyetl::{Warehouse, WarehouseConfig};
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

fn cfg(cost_based: bool) -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        cost_based_planning: cost_based,
        ..Default::default()
    }
}

struct Rig {
    costed: Mutex<Warehouse>,
    heuristic: Mutex<Warehouse>,
    _repo: TestRepo,
}

fn rig() -> &'static Rig {
    static RIG: OnceLock<Rig> = OnceLock::new();
    RIG.get_or_init(|| {
        let repo = figure1_repo("cost_equiv", 512);
        Rig {
            costed: Mutex::new(Warehouse::open_lazy(&repo.root, cfg(true)).unwrap()),
            heuristic: Mutex::new(Warehouse::open_lazy(&repo.root, cfg(false)).unwrap()),
            _repo: repo,
        }
    })
}

/// Cell-wise comparison with a relative epsilon for floats: a reordered
/// join can feed float aggregation in a different order.
fn assert_tables_close(sql: &str, a: &lazyetl::store::Table, b: &lazyetl::store::Table) {
    assert_eq!(a.num_rows(), b.num_rows(), "row count for {sql}");
    assert_eq!(
        a.schema.fields.len(),
        b.schema.fields.len(),
        "width for {sql}"
    );
    for col in 0..a.schema.fields.len() {
        for row in 0..a.num_rows() {
            let va = a.columns[col].get(row).unwrap();
            let vb = b.columns[col].get(row).unwrap();
            match (&va, &vb) {
                (Value::Float64(x), Value::Float64(y)) => {
                    let tol = (x.abs().max(y.abs()) * 1e-9).max(1e-9);
                    assert!((x - y).abs() <= tol, "{sql}: cell [{row},{col}] {x} vs {y}");
                }
                _ => assert_eq!(va, vb, "{sql}: cell [{row},{col}]"),
            }
        }
    }
}

fn check(sql: &str) {
    let r = rig();
    let a = r.costed.lock().unwrap().query(sql).unwrap();
    let b = r.heuristic.lock().unwrap().query(sql).unwrap();
    assert_tables_close(sql, &a.table, &b.table);
}

fn explain_stage(stages: &[(String, String)]) -> Option<&str> {
    stages
        .iter()
        .find(|(n, _)| n == "explain")
        .map(|(_, s)| s.as_str())
}

// ---------------------------------------------------------------------------
// EXPLAIN golden tests
// ---------------------------------------------------------------------------

#[test]
fn explain_reports_join_order_estimates_and_index_seek() {
    let repo = figure1_repo("explain_cost", 512);
    let wh = Warehouse::open_lazy(&repo.root, cfg(true)).unwrap();
    let out = wh.query(FIGURE1_Q1).unwrap();
    let explain =
        explain_stage(&out.report.stages).expect("costed queries always emit an explain stage");

    // Join order: the metadata tables plus the runtime-injected data.
    assert!(explain.contains("join order:"), "{explain}");
    assert!(explain.contains("files"), "{explain}");
    assert!(explain.contains("records"), "{explain}");
    assert!(explain.contains("data (injected)"), "{explain}");

    // Estimated vs. actual result rows, with the absolute error the
    // metrics accumulate. Q1 is a one-row aggregate and the model knows
    // it: a grand total without GROUP BY estimates exactly 1.
    assert!(
        explain.contains("estimated rows: 1 | actual rows: 1 | abs error: 0"),
        "{explain}"
    );

    // Per-table access methods: resident scans with statistics, and the
    // time-window query's record pruning served by the index seek.
    assert!(explain.contains("access files: scan"), "{explain}");
    assert!(explain.contains("access records: scan"), "{explain}");
    assert!(
        explain.contains("access data: time-index seek"),
        "{explain}"
    );

    // The same estimate feeds the warehouse-wide counters (and from
    // there the server's stats frame).
    let exec = wh.stats_snapshot().exec;
    assert_eq!(exec.plans_estimated, 1);
    assert_eq!(exec.estimated_rows, 1);
    assert_eq!(exec.actual_rows, 1);
    assert_eq!(exec.estimate_abs_error, 0);
    assert!(exec.index_seeks >= 1, "window query pruned via the index");
}

#[test]
fn explain_diff_between_costed_and_heuristic_pipelines() {
    let repo = figure1_repo("explain_diff", 512);
    let costed = Warehouse::open_lazy(&repo.root, cfg(true)).unwrap();
    let heuristic = Warehouse::open_lazy(&repo.root, cfg(false)).unwrap();
    let a = costed.query(FIGURE1_Q2).unwrap();
    let b = heuristic.query(FIGURE1_Q2).unwrap();

    // The diff between the two pipelines is exactly the explain stage
    // (plus, possibly, plan shape): results are identical.
    assert!(explain_stage(&a.report.stages).is_some());
    assert!(
        explain_stage(&b.report.stages).is_none(),
        "ablation emits no explain"
    );
    assert_eq!(
        a.report
            .stages
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>(),
        vec!["logical", "optimized", "rewritten", "explain"]
    );
    assert_eq!(
        b.report
            .stages
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>(),
        vec!["logical", "optimized", "rewritten"]
    );
    assert_tables_close(FIGURE1_Q2, &a.table, &b.table);

    // And the heuristic warehouse costs no plans.
    assert_eq!(heuristic.stats_snapshot().exec.plans_estimated, 0);
}

#[test]
fn ablated_seek_reports_linear_sweep_in_explain() {
    let repo = figure1_repo("explain_sweep", 512);
    let wh = Warehouse::open_lazy(
        &repo.root,
        WarehouseConfig {
            time_index_seek: false,
            ..cfg(true)
        },
    )
    .unwrap();
    let out = wh.query(FIGURE1_Q1).unwrap();
    let explain = explain_stage(&out.report.stages).unwrap();
    assert!(explain.contains("access data: linear sweep"), "{explain}");
    assert_eq!(wh.stats_snapshot().exec.index_seeks, 0);
}

#[test]
fn metadata_only_queries_are_costed_too() {
    let repo = figure1_repo("explain_meta", 512);
    let wh = Warehouse::open_lazy(&repo.root, cfg(true)).unwrap();
    let out = wh
        .query("SELECT station, channel FROM mseed.files ORDER BY station, channel")
        .unwrap();
    let explain = explain_stage(&out.report.stages).unwrap();
    // No external data touched: just the resident scan, estimated from
    // its zone-map statistics — a full scan estimates exactly its rows.
    assert!(explain.contains("join order: files"), "{explain}");
    assert!(
        explain.contains(&format!(
            "estimated rows: {n} | actual rows: {n} | abs error: 0",
            n = out.table.num_rows()
        )),
        "{explain}"
    );
    assert!(!explain.contains("access data:"), "{explain}");
}

// ---------------------------------------------------------------------------
// Property: costed plans ≡ as-written plans, over random queries
// ---------------------------------------------------------------------------

fn station_strategy() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["HGN", "OPLO", "WIT", "WTSB", "ISK", "NOPE"])
}

fn agg_strategy() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["AVG", "MIN", "MAX", "SUM", "COUNT"])
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 64,
    })]

    #[test]
    fn costed_equals_heuristic_on_windowed_aggregates(
        station in station_strategy(),
        agg in agg_strategy(),
        start_min in 10u32..20,
        len_min in 1u32..5,
    ) {
        let lo = format!("2010-01-12T22:{start_min:02}:00.000");
        let hi = format!("2010-01-12T22:{:02}:00.000", (start_min + len_min).min(59));
        check(&format!(
            "SELECT {agg}(D.sample_value) FROM mseed.dataview \
             WHERE F.station = '{station}' \
             AND D.sample_time >= '{lo}' AND D.sample_time < '{hi}'"
        ));
    }

    #[test]
    fn costed_equals_heuristic_on_metadata_joins(
        net in prop::sample::select(vec!["NL", "KO", "XX"]),
        min_seq in 0i64..4,
    ) {
        // Three-relation join chains are exactly what the reorder pass
        // rewrites; written here in a deliberately suboptimal order.
        check(&format!(
            "SELECT f.station, r.seq_no \
             FROM mseed.records r JOIN mseed.files f ON r.file_id = f.file_id \
             WHERE f.network = '{net}' AND r.seq_no > {min_seq} \
             ORDER BY f.station, r.seq_no LIMIT 40"
        ));
    }

    #[test]
    fn costed_equals_heuristic_on_grouped_dataview(
        channel in prop::sample::select(vec!["BHZ", "BHE"]),
        agg in agg_strategy(),
    ) {
        check(&format!(
            "SELECT F.station, {agg}(D.sample_value) FROM mseed.dataview \
             WHERE F.channel = '{channel}' \
             GROUP BY F.station ORDER BY F.station"
        ));
    }
}
