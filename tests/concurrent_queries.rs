//! Concurrent query stress: K threads hammering one shared `Warehouse`
//! must each get results identical to the serial eager baseline, share
//! the lock-striped record cache (no re-extraction once a record is
//! cached, beyond benign same-record races), and never deadlock.

mod common;

use common::{figure1_repo, FIGURE1_Q1, FIGURE1_Q2};
use lazyetl::{Warehouse, WarehouseConfig};
use std::sync::Arc;

const METADATA_QUERY: &str =
    "SELECT network, station, COUNT(*) FROM mseed.files GROUP BY network, station";

fn no_refresh() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    }
}

/// The static guarantee everything else builds on.
#[test]
fn warehouse_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Warehouse>();
    assert_send_sync::<Arc<Warehouse>>();
}

#[test]
fn threads_get_results_identical_to_serial_eager_baseline() {
    let repo = figure1_repo("conc_equiv", 512);
    let queries = [FIGURE1_Q1, FIGURE1_Q2, METADATA_QUERY];

    // Ground truth: the eager warehouse, queried serially.
    let eager = Warehouse::open_eager(&repo.root, no_refresh()).unwrap();
    let baseline: Vec<String> = queries
        .iter()
        .map(|sql| eager.query(sql).unwrap().table.to_ascii(10_000))
        .collect();

    let lazy = Arc::new(Warehouse::open_lazy(&repo.root, no_refresh()).unwrap());
    let threads = 4;
    std::thread::scope(|s| {
        for t in 0..threads {
            let lazy = Arc::clone(&lazy);
            let baseline = &baseline;
            s.spawn(move || {
                // Stagger starting points so threads overlap on different
                // queries (and therefore different cache shards).
                for round in 0..queries.len() {
                    let qi = (t + round) % queries.len();
                    let out = lazy.query(queries[qi]).unwrap();
                    assert_eq!(
                        out.table.to_ascii(10_000),
                        baseline[qi],
                        "thread {t} round {round} diverged from eager baseline on query {qi}"
                    );
                }
            });
        }
    });
}

#[test]
fn concurrent_threads_share_the_cache_without_duplicate_extraction() {
    let repo = figure1_repo("conc_cache", 512);
    let queries = [FIGURE1_Q1, FIGURE1_Q2];

    // How many records one cold serial pass extracts (the unique working
    // set of the query mix).
    let probe = Warehouse::open_lazy(&repo.root, no_refresh()).unwrap();
    let unique: usize = queries
        .iter()
        .map(|sql| probe.query(sql).unwrap().report.records_extracted)
        .sum();
    assert!(unique > 0, "mix must touch actual data");

    let wh = Arc::new(Warehouse::open_lazy(&repo.root, no_refresh()).unwrap());
    let threads = 4;
    let per_thread: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let wh = Arc::clone(&wh);
                s.spawn(move || {
                    let mut extracted = 0usize;
                    for round in 0..queries.len() {
                        let qi = (t + round) % queries.len();
                        extracted += wh.query(queries[qi]).unwrap().report.records_extracted;
                    }
                    extracted
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let total: usize = per_thread.iter().sum();

    // Every needed record is extracted at least once; racing threads may
    // each extract a record both saw as a miss (benign shard race), but
    // never more than once per thread.
    assert!(
        total >= unique,
        "storm extracted {total} < working set {unique}"
    );
    assert!(
        total <= unique * threads,
        "storm extracted {total} > {threads}x working set {unique}"
    );

    // After the storm the cache holds the whole working set: a warm pass
    // extracts nothing, from any thread.
    for sql in queries {
        let warm = wh.query(sql).unwrap();
        assert_eq!(
            warm.report.records_extracted, 0,
            "warm query re-extracted after concurrent storm"
        );
        assert!(warm.report.cache_hits > 0);
    }
    // And the aggregate cache accounting is consistent.
    let snap = wh.cache_snapshot();
    assert_eq!(
        snap.entries.len(),
        unique,
        "cache holds the working set once"
    );
    assert!(snap.used_bytes <= snap.budget_bytes);
    let occupancy_total: usize = snap.shard_occupancy.iter().map(|&(n, _)| n).sum();
    assert_eq!(occupancy_total, snap.entries.len());
}

#[test]
fn auto_refresh_default_config_supports_concurrent_queries() {
    // The default config auto-refreshes at every query start; against a
    // quiet repository that must stay a read-only probe (no exclusive
    // lock, no deadlock) and results must still match the baseline.
    let repo = figure1_repo("conc_auto", 512);
    let eager = Warehouse::open_eager(&repo.root, no_refresh()).unwrap();
    let expected = eager.query(FIGURE1_Q2).unwrap().table.to_ascii(10_000);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, WarehouseConfig::default()).unwrap());
    std::thread::scope(|s| {
        for _ in 0..4 {
            let wh = Arc::clone(&wh);
            let expected = &expected;
            s.spawn(move || {
                for _ in 0..2 {
                    let out = wh.query(FIGURE1_Q2).unwrap();
                    assert_eq!(&out.table.to_ascii(10_000), expected);
                    assert!(out.report.refresh.is_none(), "quiet repo: no-op refresh");
                }
            });
        }
    });
    assert_eq!(
        wh.generation(),
        0,
        "no-op auto-refreshes never bump the generation"
    );
}

#[test]
fn refresh_during_concurrent_queries_does_not_deadlock_or_corrupt() {
    let repo = figure1_repo("conc_refresh", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, no_refresh()).unwrap());
    let eager = Warehouse::open_eager(&repo.root, no_refresh()).unwrap();
    let expected = eager.query(FIGURE1_Q2).unwrap().table.to_ascii(10_000);

    std::thread::scope(|s| {
        // Two query threads…
        for _ in 0..2 {
            let wh = Arc::clone(&wh);
            let expected = &expected;
            s.spawn(move || {
                for _ in 0..3 {
                    let out = wh.query(FIGURE1_Q2).unwrap();
                    assert_eq!(&out.table.to_ascii(10_000), expected);
                }
            });
        }
        // …interleaved with explicit refreshes (no repository changes, so
        // results must be stable; the write lock still excludes queries).
        let wh2 = Arc::clone(&wh);
        s.spawn(move || {
            for _ in 0..3 {
                let summary = wh2.refresh().unwrap();
                assert!(summary.is_noop(), "repository did not change");
            }
        });
    });
    assert_eq!(wh.generation(), 0, "no-op refreshes do not bump generation");
}

#[test]
fn result_recycler_is_shared_across_threads() {
    let repo = figure1_repo("conc_recycle", 512);
    let cfg = WarehouseConfig {
        auto_refresh: false,
        recycle_query_results: true,
        ..Default::default()
    };
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, cfg).unwrap());
    // Prime the recycler once.
    let first = wh.query(FIGURE1_Q2).unwrap();
    assert!(!first.report.result_recycled);
    let expected = first.table.to_ascii(10_000);

    std::thread::scope(|s| {
        for _ in 0..4 {
            let wh = Arc::clone(&wh);
            let expected = &expected;
            s.spawn(move || {
                let out = wh.query(FIGURE1_Q2).unwrap();
                assert!(out.report.result_recycled, "primed result is recycled");
                assert_eq!(&out.table.to_ascii(10_000), expected);
            });
        }
    });
    let stats = wh.result_cache_snapshot().stats;
    assert_eq!(stats.hits, 4);
}

#[test]
fn intra_query_parallelism_composes_with_concurrent_clients() {
    // K client threads × morsel-driven execution inside each query: the
    // executor spawns scoped workers per operator, so clients outnumbering
    // cores merely oversubscribes the machine — no shared pool to
    // deadlock, and every result must still equal the serial eager
    // baseline byte for byte.
    let repo = figure1_repo("conc_morsel", 512);
    let queries = [FIGURE1_Q1, FIGURE1_Q2, METADATA_QUERY];

    let eager = Warehouse::open_eager(&repo.root, no_refresh()).unwrap();
    let baseline: Vec<String> = queries
        .iter()
        .map(|sql| eager.query(sql).unwrap().table.to_ascii(10_000))
        .collect();

    let cfg = WarehouseConfig {
        auto_refresh: false,
        parallelism: 4, // deliberately above most CI hosts' core counts
        ..Default::default()
    };
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, cfg).unwrap());
    let clients = 8;
    std::thread::scope(|s| {
        for t in 0..clients {
            let wh = Arc::clone(&wh);
            let baseline = &baseline;
            s.spawn(move || {
                for round in 0..queries.len() {
                    let qi = (t + round) % queries.len();
                    let out = wh.query(queries[qi]).unwrap();
                    assert_eq!(
                        out.table.to_ascii(10_000),
                        baseline[qi],
                        "client {t} round {round}: parallel execution diverged on query {qi}"
                    );
                }
            });
        }
    });
}

#[test]
fn parallel_extraction_composes_with_concurrent_clients() {
    // K client threads, each of whose lazy fetches fans out to worker
    // threads feeding the sharded cache: the two levels of parallelism
    // must compose without changing results.
    let repo = figure1_repo("conc_par", 512);
    let cfg = WarehouseConfig {
        auto_refresh: false,
        extraction_threads: 4,
        ..Default::default()
    };
    let eager = Warehouse::open_eager(&repo.root, no_refresh()).unwrap();
    let expected = eager.query(FIGURE1_Q2).unwrap().table.to_ascii(10_000);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, cfg).unwrap());
    std::thread::scope(|s| {
        for _ in 0..4 {
            let wh = Arc::clone(&wh);
            let expected = &expected;
            s.spawn(move || {
                let out = wh.query(FIGURE1_Q2).unwrap();
                assert_eq!(&out.table.to_ascii(10_000), expected);
            });
        }
    });
}
