//! Shared helpers for integration tests: generated repositories with known
//! ground truth, and the paper's Figure-1 queries verbatim.
#![allow(dead_code, unused_imports)] // each integration test uses a different subset

use lazyetl::mseed::gen::{generate_repository, GeneratedRepository, GeneratorConfig};
use lazyetl::mseed::Timestamp;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

// The paper's Figure-1 queries, from their single source of truth.
pub use lazyetl::core::{FIGURE1_Q1, FIGURE1_Q2};

/// A generated repository rooted in a fresh temp directory; removed on
/// drop.
pub struct TestRepo {
    /// Root directory.
    pub root: PathBuf,
    /// Ground truth from the generator.
    pub generated: GeneratedRepository,
    /// The generator configuration used.
    pub config: GeneratorConfig,
}

impl Drop for TestRepo {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

/// Build a repository whose streams cover both Figure-1 queries.
///
/// Uses the four NL stations (query 2 groups them) plus KO.ISK (query 1
/// averages its BHE channel), covering 22:10–22:20 on 2010-01-12 so the Q1
/// window (22:15:00–22:15:02) falls inside the second file of each stream.
/// Kept small enough that even full-extraction ablations run quickly in
/// debug builds.
pub fn figure1_repo(tag: &str, record_length: usize) -> TestRepo {
    let inv = lazyetl::mseed::inventory::default_inventory();
    let stations: Vec<_> = inv
        .iter()
        .filter(|s| s.network == "NL" || s.station == "ISK")
        .cloned()
        .collect();
    assert_eq!(stations.len(), 5, "4 NL stations + ISK");
    let config = GeneratorConfig {
        stations,
        channels: vec!["BHZ".into(), "BHE".into()],
        start: Timestamp::from_ymd_hms(2010, 1, 12, 22, 10, 0, 0),
        file_duration_secs: 300,
        files_per_stream: 2,
        record_length,
        events_per_file: 0.3,
        seed: 0xF1_60_12,
        ..Default::default()
    };
    build(tag, config)
}

/// Build a repository from an explicit configuration.
pub fn build(tag: &str, config: GeneratorConfig) -> TestRepo {
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let root = std::env::temp_dir().join(format!("lazyetl_it_{tag}_{}_{n}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).unwrap();
    let generated = generate_repository(&root, &config).expect("generation succeeds");
    TestRepo {
        root,
        generated,
        config,
    }
}
