//! Incremental result maintenance (PR 10): insert-only refresh deltas
//! *patch* resident recycled results instead of dropping them, scoped
//! invalidation keeps provably-unaffected entries, and everything else
//! falls back to the pre-existing drop-and-recompute behaviour.

mod common;

use common::{figure1_repo, FIGURE1_Q1, FIGURE1_Q2};
use lazyetl::core::warehouse::{Warehouse, WarehouseConfig};
use lazyetl::core::EtlOp;
use lazyetl::mseed::record::SourceId;
use lazyetl::mseed::Timestamp;
use lazyetl::repo::{updates, Repository};

fn maint_config() -> WarehouseConfig {
    WarehouseConfig {
        recycle_query_results: true, // maintain_recycled_results defaults on
        ..Default::default()
    }
}

/// Add a brand-new file behind the warehouse's back: an insert-only delta.
fn insert_file(root: &std::path::Path, net: &str, sta: &str, chan: &str, minute: u32) {
    let mut raw = Repository::open(root.to_path_buf()).unwrap();
    let src = SourceId::new(net, sta, "", chan).unwrap();
    updates::add_file(
        &mut raw,
        &src,
        Timestamp::from_ymd_hms(2010, 1, 12, 23, minute, 0, 0),
        10,
        0xADD + minute as u64,
    )
    .unwrap();
}

#[test]
fn insert_only_refresh_patches_group_aggregate() {
    let repo = figure1_repo("maint_patch", 512);
    let wh = Warehouse::open_lazy(&repo.root, maint_config()).unwrap();

    let first = wh.query(FIGURE1_Q2).unwrap();
    assert!(!first.report.result_recycled);

    // New file for an *existing* NL/BHZ station: the cached Q2 groups'
    // MIN/MAX states must absorb its samples.
    insert_file(&repo.root, "NL", "HGN", "BHZ", 0);
    wh.refresh().unwrap();

    let stats = wh.stats_snapshot();
    assert!(
        stats.recycler.results_patched >= 1,
        "insert-only delta patches the resident aggregate: {:?}",
        stats.recycler
    );
    assert_eq!(
        stats.recycler.recompute_fallbacks, 0,
        "nothing needed a recompute: {:?}",
        stats.recycler
    );

    let second = wh.query(FIGURE1_Q2).unwrap();
    assert!(
        second.report.result_recycled,
        "the patched entry serves the re-query"
    );
    assert!(second.report.files_extracted.is_empty());

    // Ground truth: a fresh warehouse recomputing from scratch.
    let fresh = Warehouse::open_lazy(&repo.root, WarehouseConfig::default()).unwrap();
    let truth = fresh.query(FIGURE1_Q2).unwrap();
    assert_eq!(
        second.table.to_ascii(100),
        truth.table.to_ascii(100),
        "patched result ≡ recompute"
    );
}

#[test]
fn patched_count_tracks_inserted_records() {
    let repo = figure1_repo("maint_count", 512);
    let wh = Warehouse::open_lazy(&repo.root, maint_config()).unwrap();
    let sql = "SELECT COUNT(*) FROM mseed.records";

    wh.query(sql).unwrap();
    insert_file(&repo.root, "NL", "OPLO", "BHZ", 5);
    wh.refresh().unwrap();

    let out = wh.query(sql).unwrap();
    assert!(out.report.result_recycled, "served from the patched entry");
    let fresh = Warehouse::open_lazy(&repo.root, WarehouseConfig::default()).unwrap();
    assert_eq!(
        out.table.to_ascii(10),
        fresh.query(sql).unwrap().table.to_ascii(10)
    );
    let stats = wh.stats_snapshot();
    assert!(stats.recycler.results_patched >= 1);
    assert!(stats.recycler.patch_rows_applied >= 1);
}

#[test]
fn time_disjoint_delta_keeps_entries_untouched() {
    let repo = figure1_repo("maint_keep", 512);
    let wh = Warehouse::open_lazy(&repo.root, maint_config()).unwrap();

    // Q1's sample-time window is 22:15:00–22:15:02; the new file starts at
    // 23:40 — provably disjoint, so the entry survives without even
    // running the delta.
    let first = wh.query(FIGURE1_Q1).unwrap();
    insert_file(&repo.root, "KO", "ISK", "BHE", 40);
    wh.refresh().unwrap();

    let stats = wh.stats_snapshot();
    assert!(
        stats.recycler.results_kept >= 1,
        "time-disjoint entry kept: {:?}",
        stats.recycler
    );
    assert!(stats.recycler.bytes_saved_estimate > 0);

    let second = wh.query(FIGURE1_Q1).unwrap();
    assert!(second.report.result_recycled);
    assert_eq!(second.table.to_ascii(10), first.table.to_ascii(10));
}

#[test]
fn modification_delta_falls_back_to_recompute() {
    let repo = figure1_repo("maint_fallback", 512);
    let wh = Warehouse::open_lazy(&repo.root, maint_config()).unwrap();

    let before = wh.query(FIGURE1_Q2).unwrap();
    // Appending to an existing file is NOT insert-only: old rows change,
    // so the partition property does not hold and patching is unsound.
    let mut raw = Repository::open(repo.root.clone()).unwrap();
    let target = raw.files()[0].uri.clone();
    updates::append_records(&mut raw, &target, 10, 3).unwrap();
    wh.refresh().unwrap();

    let stats = wh.stats_snapshot();
    assert!(
        stats.recycler.recompute_fallbacks >= 1,
        "modified files force the drop path: {:?}",
        stats.recycler
    );
    assert_eq!(stats.recycler.results_patched, 0);

    let after = wh.query(FIGURE1_Q2).unwrap();
    assert!(!after.report.result_recycled, "stale entry was dropped");
    drop(before);
}

#[test]
fn maintenance_disabled_restores_drop_on_refresh() {
    let repo = figure1_repo("maint_off", 512);
    let cfg = WarehouseConfig {
        recycle_query_results: true,
        maintain_recycled_results: false,
        ..Default::default()
    };
    let wh = Warehouse::open_lazy(&repo.root, cfg).unwrap();

    wh.query(FIGURE1_Q2).unwrap();
    insert_file(&repo.root, "NL", "WIT", "BHZ", 10);
    wh.refresh().unwrap();

    let stats = wh.stats_snapshot();
    assert_eq!(stats.recycler.results_patched, 0, "maintenance is off");
    let again = wh.query(FIGURE1_Q2).unwrap();
    assert!(
        !again.report.result_recycled,
        "the E18 recompute baseline drops and recomputes"
    );
    // Correctness is unaffected either way.
    let fresh = Warehouse::open_lazy(&repo.root, WarehouseConfig::default()).unwrap();
    assert_eq!(
        again.table.to_ascii(100),
        fresh.query(FIGURE1_Q2).unwrap().table.to_ascii(100)
    );
}

#[test]
fn append_core_rows_are_appended() {
    let repo = figure1_repo("maint_append", 512);
    let wh = Warehouse::open_lazy(&repo.root, maint_config()).unwrap();
    let sql = "SELECT R.file_id, R.seq_no FROM mseed.records WHERE R.seq_no >= 0";

    let before = wh.query(sql).unwrap();
    insert_file(&repo.root, "NL", "WTSB", "BHZ", 15);
    wh.refresh().unwrap();

    let out = wh.query(sql).unwrap();
    assert!(out.report.result_recycled);
    assert!(
        out.report.rows > before.report.rows,
        "delta rows appended to the resident projection"
    );
    let fresh = Warehouse::open_lazy(&repo.root, WarehouseConfig::default()).unwrap();
    let truth = fresh.query(sql).unwrap();
    assert_eq!(out.report.rows, truth.report.rows);
    // Row-order-insensitive comparison: collect and sort rendered rows.
    let rows = |t: &lazyetl::store::Table| {
        let mut v: Vec<String> = (0..t.num_rows())
            .map(|i| format!("{:?}", t.row(i).unwrap()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(rows(&out.table), rows(&truth.table));
}

#[test]
fn maintenance_ops_are_logged() {
    let repo = figure1_repo("maint_log", 512);
    let wh = Warehouse::open_lazy(&repo.root, maint_config()).unwrap();

    wh.query(FIGURE1_Q2).unwrap();
    insert_file(&repo.root, "NL", "HGN", "BHZ", 20);
    wh.refresh().unwrap();

    let deltas = wh.etl_log().count_matching(|op| {
        matches!(
            op,
            EtlOp::RefreshDelta {
                insert_only: true,
                ..
            }
        )
    });
    let patches = wh
        .etl_log()
        .count_matching(|op| matches!(op, EtlOp::ResultPatch { .. }));
    assert_eq!(deltas, 1, "the refresh delta is journaled");
    assert!(patches >= 1, "the applied patch is journaled");
}
