//! Bounded-staleness refresh: `max_staleness` trades metadata freshness
//! for query-start latency, the knob the paper's related work calls
//! "bounds on staleness".

mod common;

use common::figure1_repo;
use lazyetl::core::warehouse::{Warehouse, WarehouseConfig};
use lazyetl::repo::{updates, Repository};
use std::time::Duration;

const COUNT_RECORDS: &str = "SELECT COUNT(*) FROM mseed.records";

fn count_of(wh: &mut Warehouse) -> String {
    wh.query(COUNT_RECORDS).unwrap().table.to_ascii(10)
}

#[test]
fn within_bound_queries_skip_the_rescan() {
    let repo = figure1_repo("stale_skip", 512);
    let mut wh = Warehouse::open_lazy(
        &repo.root,
        WarehouseConfig {
            auto_refresh: true,
            max_staleness: Some(Duration::from_secs(3600)),
            ..Default::default()
        },
    )
    .unwrap();
    let before = count_of(&mut wh);

    // Change the repository behind the warehouse's back.
    let mut raw = Repository::open(repo.root.clone()).unwrap();
    let target = raw.files()[0].uri.clone();
    updates::append_records(&mut raw, &target, 10, 3).unwrap();

    // Within the bound: the stale metadata is intentionally served.
    let during = count_of(&mut wh);
    assert_eq!(during, before, "metadata lag is allowed inside the bound");

    // A manual refresh always folds the changes in.
    let summary = wh.refresh().unwrap();
    assert_eq!(summary.modified, 1);
    let after = count_of(&mut wh);
    assert_ne!(after, before, "appended records visible after refresh");
}

#[test]
fn zero_bound_behaves_like_every_query() {
    let repo = figure1_repo("stale_zero", 512);
    let mut wh = Warehouse::open_lazy(
        &repo.root,
        WarehouseConfig {
            auto_refresh: true,
            max_staleness: Some(Duration::ZERO),
            ..Default::default()
        },
    )
    .unwrap();
    let before = count_of(&mut wh);

    let mut raw = Repository::open(repo.root.clone()).unwrap();
    let target = raw.files()[0].uri.clone();
    updates::append_records(&mut raw, &target, 10, 3).unwrap();

    let out = wh.query(COUNT_RECORDS).unwrap();
    assert!(
        out.report.refresh.is_some(),
        "zero bound rescans on every query"
    );
    assert_ne!(out.table.to_ascii(10), before);
}

#[test]
fn bound_is_irrelevant_when_auto_refresh_is_off() {
    let repo = figure1_repo("stale_off", 512);
    let mut wh = Warehouse::open_lazy(
        &repo.root,
        WarehouseConfig {
            auto_refresh: false,
            max_staleness: Some(Duration::ZERO),
            ..Default::default()
        },
    )
    .unwrap();
    let before = count_of(&mut wh);

    let mut raw = Repository::open(repo.root.clone()).unwrap();
    let target = raw.files()[0].uri.clone();
    updates::append_records(&mut raw, &target, 10, 3).unwrap();

    let out = wh.query(COUNT_RECORDS).unwrap();
    assert!(out.report.refresh.is_none());
    assert_eq!(out.table.to_ascii(10), before, "manual mode never rescans");
}

#[test]
fn record_payloads_stay_fresh_inside_the_bound() {
    // Even while metadata is allowed to lag, the record cache checks file
    // mtimes at fetch time, so payload queries never serve bytes from a
    // superseded file version.
    let repo = figure1_repo("stale_payload", 512);
    let wh = Warehouse::open_lazy(
        &repo.root,
        WarehouseConfig {
            auto_refresh: true,
            max_staleness: Some(Duration::from_secs(3600)),
            ..Default::default()
        },
    )
    .unwrap();
    // Warm the cache with the first file's first record.
    let warm_sql = "SELECT COUNT(D.sample_value) FROM mseed.dataview WHERE R.seq_no = 1";
    wh.query(warm_sql).unwrap();
    let hits_before = wh.cache_snapshot().stats.hits;

    // Touch the file: its mtime changes, so cached entries for it are stale.
    let mut raw = Repository::open(repo.root.clone()).unwrap();
    let uris: Vec<String> = raw.files().iter().map(|e| e.uri.clone()).collect();
    for uri in &uris {
        updates::touch(&mut raw, uri).unwrap();
    }

    let out = wh.query(warm_sql).unwrap();
    assert!(
        out.report.stale_drops > 0,
        "mtime change forces re-extraction even inside the staleness bound"
    );
    assert_eq!(
        wh.cache_snapshot().stats.hits,
        hits_before,
        "no stale payload was served"
    );
}
