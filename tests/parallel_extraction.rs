//! Parallel lazy extraction (E10): thread count must never change any
//! observable result — only wall-clock time.

mod common;

use common::{figure1_repo, FIGURE1_Q1, FIGURE1_Q2};
use lazyetl::core::warehouse::{Warehouse, WarehouseConfig};

fn config_with_threads(threads: usize) -> WarehouseConfig {
    WarehouseConfig {
        extraction_threads: threads,
        auto_refresh: false,
        ..Default::default()
    }
}

#[test]
fn results_identical_across_thread_counts() {
    let repo = figure1_repo("par_equiv", 512);
    let mut reference: Option<(String, String)> = None;
    for threads in [1usize, 2, 4, 8] {
        let wh = Warehouse::open_lazy(&repo.root, config_with_threads(threads)).unwrap();
        let q1 = wh.query(FIGURE1_Q1).unwrap().table.to_ascii(1000);
        let q2 = wh.query(FIGURE1_Q2).unwrap().table.to_ascii(1000);
        match &reference {
            None => reference = Some((q1, q2)),
            Some((r1, r2)) => {
                assert_eq!(&q1, r1, "Q1 differs at {threads} threads");
                assert_eq!(&q2, r2, "Q2 differs at {threads} threads");
            }
        }
    }
}

#[test]
fn extraction_stats_identical_across_thread_counts() {
    let repo = figure1_repo("par_stats", 512);
    let mut reference = None;
    for threads in [1usize, 4] {
        let wh = Warehouse::open_lazy(&repo.root, config_with_threads(threads)).unwrap();
        let out = wh.query(FIGURE1_Q2).unwrap();
        let key = (
            out.report.files_extracted.clone(),
            out.report.records_extracted,
            out.report.samples_extracted,
            out.report.cache_hits,
            out.report.cache_misses,
            out.report.bytes_read,
        );
        match &reference {
            None => reference = Some(key),
            Some(r) => assert_eq!(&key, r, "stats differ at {threads} threads"),
        }
    }
}

#[test]
fn cache_contents_identical_across_thread_counts() {
    let repo = figure1_repo("par_cache", 512);
    let mut reference: Option<Vec<((i64, i64), usize)>> = None;
    for threads in [1usize, 4] {
        let wh = Warehouse::open_lazy(&repo.root, config_with_threads(threads)).unwrap();
        wh.query(FIGURE1_Q2).unwrap();
        let snap: Vec<((i64, i64), usize)> = wh
            .cache_snapshot()
            .entries
            .iter()
            .map(|e| (e.key, e.rows))
            .collect();
        match &reference {
            None => reference = Some(snap),
            Some(r) => assert_eq!(&snap, r, "cache contents differ at {threads} threads"),
        }
    }
}

#[test]
fn warm_cache_serves_hits_regardless_of_threads() {
    let repo = figure1_repo("par_warm", 512);
    let wh = Warehouse::open_lazy(&repo.root, config_with_threads(4)).unwrap();
    let cold = wh.query(FIGURE1_Q1).unwrap();
    assert!(cold.report.records_extracted > 0);
    let warm = wh.query(FIGURE1_Q1).unwrap();
    assert_eq!(
        warm.report.records_extracted, 0,
        "warm run extracts nothing"
    );
    assert!(warm.report.cache_hits > 0);
    assert_eq!(warm.table.to_ascii(10), cold.table.to_ascii(10));
}

#[test]
fn zero_threads_behaves_as_sequential() {
    // `0` is clamped to the sequential path rather than panicking.
    let repo = figure1_repo("par_zero", 512);
    let wh = Warehouse::open_lazy(&repo.root, config_with_threads(0)).unwrap();
    let out = wh.query(FIGURE1_Q1).unwrap();
    assert!(out.report.rows > 0);
}
