//! Simulated remote (FTP-like) access accounting: the paper's repositories
//! live behind WAN links where transferred bytes dominate. The warehouse
//! accounts a modeled transfer cost for every repository read so
//! experiments can report the remote regime without sleeping.

mod common;

use common::{figure1_repo, FIGURE1_Q1};
use lazyetl::repo::AccessProfile;
use lazyetl::{Warehouse, WarehouseConfig};
use std::time::Duration;

fn wan_config() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        access: AccessProfile::wan(),
        ..Default::default()
    }
}

#[test]
fn lazy_load_models_far_less_transfer_time() {
    let repo = figure1_repo("wan_load", 4096);
    // Bandwidth-dominated regime (no RTT): the byte asymmetry shows
    // directly — lazy reads headers, eager reads everything.
    let slow_link = AccessProfile {
        per_request: Duration::ZERO,
        bytes_per_sec: 1 << 20, // 1 MiB/s
    };
    let cfg = WarehouseConfig {
        auto_refresh: false,
        access: slow_link,
        ..Default::default()
    };
    let lazy = Warehouse::open_lazy(&repo.root, cfg.clone()).unwrap();
    let eager = Warehouse::open_eager(&repo.root, cfg).unwrap();
    let l = lazy.load_report().simulated_io;
    let e = eager.load_report().simulated_io;
    assert!(l > Duration::ZERO);
    assert!(
        e > l * 10,
        "bandwidth-bound: eager models {e:?}, lazy {l:?}"
    );

    // RTT-dominated regime (20 ms per request, small files): both pay one
    // round trip per file for metadata, eager pays a second for payloads —
    // the gap narrows to about 2x, which the model reports honestly.
    let lazy = Warehouse::open_lazy(&repo.root, wan_config()).unwrap();
    let eager = Warehouse::open_eager(&repo.root, wan_config()).unwrap();
    let l = lazy.load_report().simulated_io;
    let e = eager.load_report().simulated_io;
    assert!(e > l, "RTT-bound: eager {e:?} still exceeds lazy {l:?}");
}

#[test]
fn query_accounts_transfer_only_for_extraction() {
    let repo = figure1_repo("wan_query", 512);
    let wh = Warehouse::open_lazy(&repo.root, wan_config()).unwrap();
    // Metadata-only query: no remote transfer at query time.
    let out = wh.query("SELECT COUNT(*) FROM mseed.records").unwrap();
    assert_eq!(out.report.simulated_io, Duration::ZERO);
    // Data query: transfer cost proportional to bytes of extracted records.
    let out = wh.query(FIGURE1_Q1).unwrap();
    assert!(out.report.bytes_read > 0);
    let expected = AccessProfile::wan().cost(out.report.bytes_read);
    assert!(
        out.report.simulated_io >= expected,
        "{:?} >= {expected:?}",
        out.report.simulated_io
    );
    // Warm re-run: cache serves everything, zero transfer.
    let warm = wh.query(FIGURE1_Q1).unwrap();
    assert_eq!(warm.report.simulated_io, Duration::ZERO);
    assert_eq!(warm.report.bytes_read, 0);
}

#[test]
fn transfer_cost_scales_with_selectivity() {
    let repo = figure1_repo("wan_scale", 512);
    let narrow = Warehouse::open_lazy(&repo.root, wan_config()).unwrap();
    let broad = Warehouse::open_lazy(&repo.root, wan_config()).unwrap();
    let narrow_out = narrow
        .query("SELECT COUNT(*) FROM mseed.dataview WHERE F.station = 'ISK' AND F.channel = 'BHE'")
        .unwrap();
    let broad_out = broad
        .query("SELECT COUNT(*) FROM mseed.dataview WHERE F.network = 'NL'")
        .unwrap();
    assert!(
        broad_out.report.simulated_io > narrow_out.report.simulated_io * 2,
        "broad {:?} vs narrow {:?}",
        broad_out.report.simulated_io,
        narrow_out.report.simulated_io
    );
}
