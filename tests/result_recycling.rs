//! The result recycler (E11): whole query results served from the cache,
//! invalidated by repository changes — the "end result of a view is saved
//! in the cache" sentence of §3.3.

mod common;

use common::{figure1_repo, FIGURE1_Q1, FIGURE1_Q2};
use lazyetl::core::warehouse::{Warehouse, WarehouseConfig};
use lazyetl::core::EtlOp;
use lazyetl::repo::{updates, Repository};

fn recycling_config() -> WarehouseConfig {
    WarehouseConfig {
        recycle_query_results: true,
        ..Default::default()
    }
}

#[test]
fn second_run_is_recycled_and_identical() {
    let repo = figure1_repo("recycle_q2", 512);
    let wh = Warehouse::open_lazy(&repo.root, recycling_config()).unwrap();

    let first = wh.query(FIGURE1_Q2).unwrap();
    assert!(!first.report.result_recycled);
    assert!(first.report.rows > 0);
    assert!(!first.report.files_extracted.is_empty());

    let second = wh.query(FIGURE1_Q2).unwrap();
    assert!(second.report.result_recycled, "identical SQL must hit");
    assert_eq!(second.report.rows, first.report.rows);
    assert_eq!(second.table.to_ascii(100), first.table.to_ascii(100));
    assert!(
        second.report.files_extracted.is_empty(),
        "a recycled result performs no extraction"
    );
    assert_eq!(second.report.records_extracted, 0);
    assert!(
        second
            .report
            .stages
            .iter()
            .any(|(name, _)| name == "recycled"),
        "the recycled stage is observable"
    );
    let snap = wh.result_cache_snapshot();
    assert_eq!(snap.stats.hits, 1);
    assert_eq!(snap.entries.len(), 1);
}

#[test]
fn different_literals_are_different_fingerprints() {
    let repo = figure1_repo("recycle_fp", 512);
    let wh = Warehouse::open_lazy(&repo.root, recycling_config()).unwrap();

    wh.query("SELECT COUNT(*) FROM mseed.records WHERE R.seq_no = 1")
        .unwrap();
    let out = wh
        .query("SELECT COUNT(*) FROM mseed.records WHERE R.seq_no = 2")
        .unwrap();
    assert!(
        !out.report.result_recycled,
        "changing a literal must not reuse the previous result"
    );
    assert_eq!(wh.result_cache_snapshot().entries.len(), 2);
}

#[test]
fn repository_change_invalidates_recycled_results() {
    let repo = figure1_repo("recycle_inval", 512);
    let wh = Warehouse::open_lazy(&repo.root, recycling_config()).unwrap();

    let count_sql = "SELECT COUNT(*) FROM mseed.records";
    let before = wh.query(count_sql).unwrap();
    assert!(wh.query(count_sql).unwrap().report.result_recycled);
    let gen_before = wh.generation();

    // Append records to one file behind the warehouse's back.
    let mut raw = Repository::open(repo.root.clone()).unwrap();
    let target = raw.files()[0].uri.clone();
    updates::append_records(&mut raw, &target, 10, 3).unwrap();

    // Auto-refresh at query start folds the change in and bumps the
    // generation, so the recycled COUNT(*) must not be served.
    let after = wh.query(count_sql).unwrap();
    assert!(wh.generation() > gen_before);
    assert!(!after.report.result_recycled);
    assert!(
        after.table.to_ascii(10) != before.table.to_ascii(10),
        "the recomputed count sees the appended records"
    );
    // And the fresh result is admitted again.
    assert!(wh.query(count_sql).unwrap().report.result_recycled);
}

#[test]
fn recycling_works_in_eager_mode_too() {
    let repo = figure1_repo("recycle_eager", 512);
    let wh = Warehouse::open_eager(&repo.root, recycling_config()).unwrap();
    let first = wh.query(FIGURE1_Q1).unwrap();
    let second = wh.query(FIGURE1_Q1).unwrap();
    assert!(!first.report.result_recycled);
    assert!(second.report.result_recycled);
    assert_eq!(second.table.to_ascii(10), first.table.to_ascii(10));
}

#[test]
fn recycler_disabled_by_default() {
    let repo = figure1_repo("recycle_off", 512);
    let wh = Warehouse::open_lazy(&repo.root, WarehouseConfig::default()).unwrap();
    wh.query(FIGURE1_Q1).unwrap();
    let second = wh.query(FIGURE1_Q1).unwrap();
    assert!(!second.report.result_recycled);
    assert!(wh.result_cache_snapshot().entries.is_empty());
}

#[test]
fn recycle_ops_are_logged() {
    let repo = figure1_repo("recycle_log", 512);
    let wh = Warehouse::open_lazy(&repo.root, recycling_config()).unwrap();
    wh.query(FIGURE1_Q1).unwrap();
    wh.query(FIGURE1_Q1).unwrap();
    let admits = wh
        .etl_log()
        .count_matching(|op| matches!(op, EtlOp::ResultRecycleAdmit { .. }));
    let hits = wh
        .etl_log()
        .count_matching(|op| matches!(op, EtlOp::ResultRecycleHit { .. }));
    assert_eq!(admits, 1);
    assert_eq!(hits, 1);
}

#[test]
fn recycled_hit_matches_record_cache_path_results() {
    // Same query through a recycling warehouse and a plain one must agree.
    let repo = figure1_repo("recycle_equiv", 512);
    let plain = Warehouse::open_lazy(&repo.root, WarehouseConfig::default()).unwrap();
    let recycled = Warehouse::open_lazy(&repo.root, recycling_config()).unwrap();
    for sql in [FIGURE1_Q1, FIGURE1_Q2] {
        let a = plain.query(sql).unwrap();
        recycled.query(sql).unwrap();
        let b = recycled.query(sql).unwrap(); // recycled path
        assert!(b.report.result_recycled);
        assert_eq!(a.table.to_ascii(100), b.table.to_ascii(100));
    }
}
