//! Failure injection: corrupt inputs and concurrent repository mutations
//! must surface as errors with context — never panics — and must leave
//! the warehouse usable.

mod common;

use common::{figure1_repo, FIGURE1_Q2};
use lazyetl::core::warehouse::{Warehouse, WarehouseConfig};
use lazyetl::mseed::gen::{generate_repository, GeneratorConfig};
use std::path::PathBuf;

fn no_refresh() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    }
}

fn empty_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("lazyetl_fail_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).unwrap();
    root
}

#[test]
fn garbage_mseed_file_fails_attach_not_panics() {
    let root = empty_root("garbage");
    std::fs::write(root.join("junk.mseed"), vec![0xFFu8; 4096]).unwrap();
    let err = Warehouse::open_lazy(&root, no_refresh());
    assert!(err.is_err(), "corrupt input is rejected at attach");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn truncated_file_fails_attach() {
    let repo = figure1_repo("truncated", 512);
    // Truncate the first file to two-thirds of one record.
    let victim = &repo.generated.files[0].path;
    let bytes = std::fs::read(victim).unwrap();
    std::fs::write(victim, &bytes[..340]).unwrap();
    let err = Warehouse::open_lazy(&repo.root, no_refresh());
    assert!(err.is_err(), "truncated record is detected by the scan");
    let msg = format!("{}", err.err().unwrap());
    assert!(
        msg.to_lowercase().contains("truncat") || msg.to_lowercase().contains("record"),
        "error carries context: {msg}"
    );
}

#[test]
fn empty_repository_attaches_and_answers() {
    let root = empty_root("empty");
    let wh = Warehouse::open_lazy(&root, no_refresh()).unwrap();
    assert_eq!(wh.load_report().files, 0);
    let out = wh.query("SELECT COUNT(*) FROM mseed.files").unwrap();
    assert_eq!(out.table.num_rows(), 1);
    let out = wh
        .query("SELECT AVG(D.sample_value) FROM mseed.dataview WHERE F.station = 'HGN'")
        .unwrap();
    assert_eq!(out.report.records_extracted, 0);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn zero_byte_file_is_metadata_empty() {
    let root = empty_root("zerobyte");
    std::fs::write(root.join("empty.mseed"), b"").unwrap();
    let wh = Warehouse::open_lazy(&root, no_refresh()).unwrap();
    assert_eq!(wh.load_report().files, 1, "the file is registered");
    assert_eq!(wh.load_report().records, 0, "but holds no records");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn non_seismic_files_are_ignored_by_the_scan() {
    let repo = figure1_repo("ignore", 512);
    std::fs::write(repo.root.join("README.txt"), b"not waveform data").unwrap();
    std::fs::write(repo.root.join("catalog.csv"), b"a,b,c").unwrap();
    let wh = Warehouse::open_lazy(&repo.root, no_refresh()).unwrap();
    assert_eq!(
        wh.load_report().files,
        repo.generated.files.len(),
        "only *.mseed / *.sac are attached"
    );
}

#[test]
fn file_vanishing_between_attach_and_query() {
    let repo = figure1_repo("vanish", 512);
    let wh = Warehouse::open_lazy(&repo.root, no_refresh()).unwrap();
    // Remove every ISK file from disk after the metadata was loaded.
    for f in &repo.generated.files {
        if f.source.station == "ISK" {
            std::fs::remove_file(&f.path).unwrap();
        }
    }
    // A query needing ISK data fails cleanly…
    let err = wh.query("SELECT AVG(D.sample_value) FROM mseed.dataview WHERE F.station = 'ISK'");
    assert!(err.is_err(), "missing file surfaces as an error");
    // …but the warehouse survives: metadata and other streams still work.
    let meta = wh.query("SELECT COUNT(*) FROM mseed.files").unwrap();
    assert_eq!(meta.table.num_rows(), 1);
    let other = wh.query(FIGURE1_Q2).unwrap();
    assert!(other.report.rows > 0, "NL streams are unaffected");
    // A refresh purges the vanished files and repairs the dataview.
    let summary = wh.refresh().unwrap();
    assert!(summary.removed > 0);
    let fixed = wh
        .query("SELECT AVG(D.sample_value) FROM mseed.dataview WHERE F.station = 'ISK'")
        .unwrap();
    assert_eq!(fixed.report.records_extracted, 0, "nothing left to extract");
}

#[test]
fn corrupt_file_appearing_later_fails_refresh_but_not_warehouse() {
    let repo = figure1_repo("late_corrupt", 512);
    let wh = Warehouse::open_lazy(&repo.root, no_refresh()).unwrap();
    let files_before = wh.load_report().files;
    wh.query(FIGURE1_Q2).unwrap();

    std::fs::write(repo.root.join("XX.BAD.mseed"), vec![0xAAu8; 2048]).unwrap();
    assert!(
        wh.refresh().is_err(),
        "the corrupt newcomer fails the rescan"
    );

    // Existing state still answers queries.
    let out = wh.query("SELECT COUNT(*) FROM mseed.files").unwrap();
    assert_eq!(out.table.num_rows(), 1);
    let again = wh.query(FIGURE1_Q2).unwrap();
    assert!(again.report.rows > 0);
    // Removing the offender lets refresh succeed again.
    std::fs::remove_file(repo.root.join("XX.BAD.mseed")).unwrap();
    let summary = wh.refresh().unwrap();
    assert!(summary.is_noop() || summary.removed <= 1);
    assert_eq!(
        wh.query("SELECT COUNT(*) FROM mseed.files")
            .unwrap()
            .table
            .num_rows(),
        1
    );
    let _ = files_before;
}

#[test]
fn bad_sql_leaves_warehouse_usable() {
    let repo = figure1_repo("bad_sql", 512);
    let wh = Warehouse::open_lazy(&repo.root, no_refresh()).unwrap();
    for bad in [
        "SELEC 1",
        "SELECT FROM mseed.files",
        "SELECT nonexistent_column FROM mseed.files",
        "SELECT * FROM no.such.table",
        "SELECT ABS() FROM mseed.files",
        "SELECT * FROM mseed.files WHERE station BETWEEN 1",
    ] {
        assert!(wh.query(bad).is_err(), "{bad:?} must error");
    }
    let out = wh.query(FIGURE1_Q2).unwrap();
    assert!(out.report.rows > 0, "good SQL still works after errors");
}

#[test]
fn in_place_shrink_is_detected_by_staleness_check() {
    // Rewrite a file with fewer records while keeping metadata stale
    // (no refresh): the per-fetch mtime check must notice.
    let root = empty_root("shrink");
    let config = GeneratorConfig {
        files_per_stream: 1,
        file_duration_secs: 60,
        events_per_file: 0.0,
        seed: 42,
        ..GeneratorConfig::tiny(42)
    };
    let generated = generate_repository(&root, &config).unwrap();
    let wh = Warehouse::open_lazy(&root, no_refresh()).unwrap();
    wh.query("SELECT COUNT(D.sample_value) FROM mseed.dataview WHERE F.station = 'HGN'")
        .unwrap();

    // Replace the HGN file with a much shorter one (different mtime+size).
    let victim = generated
        .files
        .iter()
        .find(|f| f.source.station == "HGN")
        .unwrap();
    let short = GeneratorConfig {
        file_duration_secs: 5,
        ..config.clone()
    };
    let tmp = empty_root("shrink_src");
    let regen = generate_repository(&tmp, &short).unwrap();
    let replacement = regen
        .files
        .iter()
        .find(|f| f.source.station == "HGN")
        .unwrap();
    std::fs::copy(&replacement.path, &victim.path).unwrap();
    filetime_touch(&victim.path);

    // Without refresh, metadata still claims the old records; fetching
    // them must not serve stale cached payloads silently — the stale
    // entries get dropped, and the re-extraction of now-missing ranges
    // errors (or yields fewer rows), never panics.
    let result =
        wh.query("SELECT COUNT(D.sample_value) FROM mseed.dataview WHERE F.station = 'HGN'");
    // A clean error is equally acceptable here; only a silent stale serve
    // would be a bug.
    if let Ok(out) = result {
        assert!(out.report.stale_drops > 0 || out.report.cache_hits == 0);
    }
    std::fs::remove_dir_all(&root).ok();
    std::fs::remove_dir_all(&tmp).ok();
}

/// Bump a file's mtime by rewriting it (coarse but portable).
fn filetime_touch(path: &std::path::Path) {
    let bytes = std::fs::read(path).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(5));
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn reopen_under_drift_invalidates_exactly_the_changed_records() {
    use lazyetl::core::save_warehouse;
    use lazyetl::repo::{updates, Repository};

    let repo = figure1_repo("drift_exact", 4096);
    let saved = repo.root.join("_saved");
    let q_hgn = "SELECT COUNT(D.sample_value) FROM mseed.dataview \
                 WHERE F.station = 'HGN' AND F.channel = 'BHZ'";
    let q_wit = "SELECT COUNT(D.sample_value) FROM mseed.dataview \
                 WHERE F.station = 'WIT' AND F.channel = 'BHZ'";
    {
        let wh = Warehouse::open_lazy(&repo.root, no_refresh()).unwrap();
        wh.query(q_hgn).unwrap();
        wh.query(q_wit).unwrap();
        save_warehouse(&wh, &saved).unwrap();
    }
    // Drift: append to every HGN/BHZ file; WIT is untouched.
    let mut r = Repository::open(&repo.root).unwrap();
    let targets: Vec<String> = r
        .files()
        .iter()
        .filter(|f| f.uri.contains("HGN") && f.uri.contains("BHZ"))
        .map(|f| f.uri.clone())
        .collect();
    let mut added = 0usize;
    for (i, uri) in targets.iter().enumerate() {
        added += updates::append_records(&mut r, uri, 10, 100 + i as u64).unwrap();
    }

    let re = Warehouse::open_saved(&repo.root, &saved, no_refresh()).unwrap();
    // Untouched station: answered entirely from rehydrated segments.
    let wit = re.query(q_wit).unwrap();
    assert_eq!(
        wit.report.records_extracted, 0,
        "unchanged file stays cached"
    );
    assert!(wit.report.cache_hits > 0);
    // Drifted station: its cached entries were invalidated, so the query
    // re-extracts — and sees the appended data.
    let hgn = re.query(q_hgn).unwrap();
    assert!(hgn.report.records_extracted > 0, "changed file re-extracts");
    let base: u64 = repo
        .generated
        .files
        .iter()
        .filter(|f| f.source.station == "HGN" && f.source.channel == "BHZ")
        .map(|f| f.num_samples as u64)
        .sum();
    assert_eq!(
        hgn.table.row(0).unwrap()[0].as_i64().unwrap() as u64,
        base + added as u64,
        "reopened warehouse sees the drifted content, not the stale cache"
    );
}

#[test]
fn concurrent_queries_during_save_serialize_correctly() {
    use lazyetl::core::save_warehouse;

    let repo = figure1_repo("save_concurrent", 4096);
    let saved = repo.root.join("_saved");
    let wh = Warehouse::open_lazy(&repo.root, no_refresh()).unwrap();
    let expected = wh.query(FIGURE1_Q2).unwrap().table;

    // Hammer the warehouse from several threads while two saves run.
    let reports = std::thread::scope(|s| {
        for _ in 0..3 {
            let wh = &wh;
            let expected = &expected;
            s.spawn(move || {
                for _ in 0..8 {
                    let out = wh.query(FIGURE1_Q2).unwrap();
                    assert_eq!(&out.table, expected, "queries unaffected by save");
                }
            });
        }
        let r1 = save_warehouse(&wh, &saved).unwrap();
        let r2 = save_warehouse(&wh, &saved).unwrap();
        (r1, r2)
    });
    assert_eq!(reports.0.epoch, 1);
    assert_eq!(reports.1.epoch, 2);

    // The final snapshot is committed, complete and warm.
    let re = Warehouse::open_saved(&repo.root, &saved, no_refresh()).unwrap();
    let out = re.query(FIGURE1_Q2).unwrap();
    assert_eq!(out.table, expected);
    assert_eq!(
        out.report.records_extracted, 0,
        "cache survived the restart"
    );
}
