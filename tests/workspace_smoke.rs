//! Workspace-wiring smoke test: every layer of the stack is reachable
//! through the `lazyetl` umbrella crate alone — generate a tiny synthetic
//! mSEED repository, attach it lazily, and run the paper's Figure-1 query
//! end to end. If crate re-exports, dependency edges, or the manifests
//! regress, this is the test that fails first.

mod common;

use common::{figure1_repo, FIGURE1_Q1, FIGURE1_Q2};
use lazyetl::core::warehouse::{Warehouse, WarehouseConfig};
use lazyetl::store::Value;

#[test]
fn umbrella_crate_runs_figure1_end_to_end() {
    // 1. Generate a tiny repository through `lazyetl::mseed` re-exports.
    let repo = figure1_repo("workspace_smoke", 512);
    assert!(
        !repo.generated.files.is_empty(),
        "generator produced files on disk"
    );

    // 2. Attach lazily through the umbrella facade: metadata only.
    let wh = Warehouse::open_lazy(&repo.root, WarehouseConfig::default())
        .expect("lazy attach reads only metadata");
    let loaded = wh.load_report().clone();
    assert_eq!(loaded.files, repo.generated.files.len());
    assert!(
        loaded.bytes_read < repo.generated.total_bytes,
        "lazy attach must not read whole files ({} of {} bytes)",
        loaded.bytes_read,
        repo.generated.total_bytes,
    );

    // 3. Figure 1, query 1: a two-second window on one station/channel.
    let q1 = wh.query(FIGURE1_Q1).expect("Q1 runs");
    assert_eq!(q1.table.num_rows(), 1, "single aggregate row");
    match q1.table.columns[0].get(0).unwrap() {
        Value::Float64(avg) => assert!(avg.is_finite(), "AVG is a number: {avg}"),
        other => panic!("AVG column should be Float64, got {other:?}"),
    }
    assert!(
        !q1.report.files_extracted.is_empty(),
        "the window forces extraction of at least one file"
    );
    assert!(
        q1.report.files_extracted.len() < repo.generated.files.len(),
        "lazy extraction touches a strict subset of the repository"
    );

    // 4. Figure 1, query 2: grouped amplitude range over the NL network.
    let q2 = wh.query(FIGURE1_Q2).expect("Q2 runs");
    assert_eq!(q2.table.num_rows(), 4, "one row per NL station");

    // 5. The recycler makes the repeated query cheaper: no new extraction.
    let q2_again = wh.query(FIGURE1_Q2).expect("Q2 reruns");
    assert_eq!(
        q2_again.report.files_extracted.len(),
        0,
        "second run is served from cache/warehouse, not the repository"
    );
    assert_eq!(q2_again.table.num_rows(), q2.table.num_rows());
}
