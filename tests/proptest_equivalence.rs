//! Property: **lazy and eager warehouses are indistinguishable through
//! SQL** — for any query, the lazily-assembled `D` rows produce the same
//! answer as the eagerly-loaded table. This is the paper's core
//! transparency claim ("extracted, transformed and loaded transparently
//! on-the-fly").

mod common;

use common::{figure1_repo, TestRepo};
use lazyetl::core::warehouse::{Warehouse, WarehouseConfig};
use lazyetl::store::Value;
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

struct Rig {
    lazy: Mutex<Warehouse>,
    eager: Mutex<Warehouse>,
    _repo: TestRepo,
}

fn rig() -> &'static Rig {
    static RIG: OnceLock<Rig> = OnceLock::new();
    RIG.get_or_init(|| {
        let repo = figure1_repo("prop_equiv", 512);
        let cfg = WarehouseConfig {
            auto_refresh: false,
            ..Default::default()
        };
        Rig {
            lazy: Mutex::new(Warehouse::open_lazy(&repo.root, cfg.clone()).unwrap()),
            eager: Mutex::new(Warehouse::open_eager(&repo.root, cfg).unwrap()),
            _repo: repo,
        }
    })
}

/// Cell-wise comparison with a relative epsilon for floats: lazy mode
/// assembles `D` per query, so float aggregation order may differ from
/// the eager table scan by rounding.
fn assert_tables_close(sql: &str, a: &lazyetl::store::Table, b: &lazyetl::store::Table) {
    assert_eq!(a.num_rows(), b.num_rows(), "row count for {sql}");
    assert_eq!(
        a.schema.fields.len(),
        b.schema.fields.len(),
        "width for {sql}"
    );
    for col in 0..a.schema.fields.len() {
        for row in 0..a.num_rows() {
            let va = a.columns[col].get(row).unwrap();
            let vb = b.columns[col].get(row).unwrap();
            match (&va, &vb) {
                (Value::Float64(x), Value::Float64(y)) => {
                    let tol = (x.abs().max(y.abs()) * 1e-9).max(1e-9);
                    assert!((x - y).abs() <= tol, "{sql}: cell [{row},{col}] {x} vs {y}");
                }
                _ => assert_eq!(va, vb, "{sql}: cell [{row},{col}]"),
            }
        }
    }
}

fn check(sql: &str) {
    let r = rig();
    let a = r.lazy.lock().unwrap().query(sql).unwrap();
    let b = r.eager.lock().unwrap().query(sql).unwrap();
    assert_tables_close(sql, &a.table, &b.table);
}

fn station_strategy() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["HGN", "OPLO", "WIT", "WTSB", "ISK", "NOPE"])
}

fn channel_strategy() -> impl Strategy<Value = Option<&'static str>> {
    prop::sample::select(vec![Some("BHZ"), Some("BHE"), None])
}

fn agg_strategy() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["AVG", "MIN", "MAX", "SUM", "COUNT"])
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 64,
    })]

    #[test]
    fn aggregate_over_random_window(
        station in station_strategy(),
        channel in channel_strategy(),
        agg in agg_strategy(),
        start_min in 10u32..20,
        len_min in 1u32..5,
    ) {
        // The repository covers 22:10–22:20 on 2010-01-12.
        let lo = format!("2010-01-12T22:{start_min:02}:00.000");
        let hi_min = (start_min + len_min).min(59);
        let hi = format!("2010-01-12T22:{hi_min:02}:00.000");
        let mut sql = format!(
            "SELECT {agg}(D.sample_value) FROM mseed.dataview \
             WHERE F.station = '{station}' \
             AND D.sample_time >= '{lo}' AND D.sample_time < '{hi}'"
        );
        if let Some(ch) = channel {
            sql.push_str(&format!(" AND F.channel = '{ch}'"));
        }
        check(&sql);
    }

    #[test]
    fn grouped_aggregates_match(
        channel in prop::sample::select(vec!["BHZ", "BHE"]),
        agg in agg_strategy(),
        net in prop::sample::select(vec!["NL", "KO"]),
    ) {
        let sql = format!(
            "SELECT F.station, {agg}(D.sample_value) FROM mseed.dataview \
             WHERE F.network = '{net}' AND F.channel = '{channel}' \
             GROUP BY F.station ORDER BY F.station"
        );
        check(&sql);
    }

    #[test]
    fn record_slices_match(
        seq in 1i64..6,
        station in station_strategy(),
    ) {
        let sql = format!(
            "SELECT COUNT(D.sample_value), MIN(D.sample_time), MAX(D.sample_time) \
             FROM mseed.dataview \
             WHERE F.station = '{station}' AND R.seq_no = {seq}"
        );
        check(&sql);
    }

    #[test]
    fn metadata_only_queries_match(
        net in prop::sample::select(vec!["NL", "KO", "XX"]),
        min_records in 0i64..4,
    ) {
        let sql = format!(
            "SELECT f.station, f.channel, r.seq_no \
             FROM mseed.files f JOIN mseed.records r ON f.file_id = r.file_id \
             WHERE f.network = '{net}' AND r.seq_no > {min_records} \
             ORDER BY f.station, f.channel, r.seq_no LIMIT 50"
        );
        check(&sql);
    }
}
