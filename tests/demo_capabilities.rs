//! The eight demonstrated capabilities of the paper's Figure-2 GUI
//! (§4, numbered list), verified end to end.

mod common;

use common::{figure1_repo, FIGURE1_Q1};
use lazyetl::core::EtlOp;
use lazyetl::repo::updates;
use lazyetl::repo::Repository;
use lazyetl::{Warehouse, WarehouseConfig};

#[test]
fn item1_initial_loading_of_only_metadata() {
    let repo = figure1_repo("cap1", 4096);
    let wh = Warehouse::open_lazy(&repo.root, WarehouseConfig::default()).unwrap();
    let lr = wh.load_report();
    assert_eq!(lr.samples_loaded, 0, "no actual data loaded");
    assert_eq!(lr.files, repo.generated.files.len());
    assert!(lr.records > 0);
    // All metadata-load operations present in the log, one per file.
    assert_eq!(
        wh.etl_log()
            .count_matching(|op| matches!(op, EtlOp::MetadataLoad { .. })),
        lr.files
    );
}

#[test]
fn item2_browsing_metadata_and_navigation() {
    let repo = figure1_repo("cap2", 4096);
    let wh = Warehouse::open_lazy(&repo.root, WarehouseConfig::default()).unwrap();
    // Browse files, drill into records of one file — no extraction at all.
    let files = wh
        .query("SELECT file_id, uri, num_records FROM mseed.files ORDER BY uri LIMIT 3")
        .unwrap();
    assert_eq!(files.table.num_rows(), 3);
    let fid = files.table.row(0).unwrap()[0].as_i64().unwrap();
    let records = wh
        .query(&format!(
            "SELECT seq_no, start_time, num_samples FROM mseed.records \
             WHERE file_id = {fid} ORDER BY seq_no"
        ))
        .unwrap();
    assert!(records.table.num_rows() > 0);
    assert_eq!(records.report.records_extracted, 0);
    assert!(records.report.files_extracted.is_empty());
}

#[test]
fn item3_comparing_performance_to_eager() {
    let repo = figure1_repo("cap3", 4096);
    let cfg = WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    };
    let lazy = Warehouse::open_lazy(&repo.root, cfg.clone()).unwrap();
    let eager = Warehouse::open_eager(&repo.root, cfg).unwrap();
    // The comparison data the demo shows: load reports side by side.
    assert!(lazy.load_report().bytes_read < eager.load_report().bytes_read / 5);
    assert!(lazy.load_report().elapsed < eager.load_report().elapsed);
}

#[test]
fn items4_and_6_observing_plans_and_their_changes() {
    let repo = figure1_repo("cap46", 512);
    let wh = Warehouse::open_lazy(&repo.root, WarehouseConfig::default()).unwrap();
    let stages = wh.explain(FIGURE1_Q1).unwrap();
    // logical, optimized, rewritten, and the costed `explain` summary.
    assert_eq!(stages.len(), 4);
    // Item 4: compile-time change — metadata predicates move below the join.
    let logical = &stages[0].1;
    let optimized = &stages[1].1;
    assert!(logical.contains("Filter: (((((")); // one big conjunction on top
    let join_pos = optimized.find("Join").unwrap();
    let station_pos = optimized.find("station = 'ISK'").unwrap();
    assert!(
        station_pos > join_pos,
        "station predicate below the join after optimization"
    );
    // Item 6: run-time change — the rewritten plan materializes the lazy
    // transformation as injected data under the original operators.
    let rewritten = &stages[2].1;
    assert!(rewritten.contains("InlineData: metadata"));
    assert!(rewritten.contains("InlineData: lazy-extract"));
    // The corresponding log entries exist, in compile-then-runtime order.
    let log = wh.etl_log();
    let compile_seq = log
        .entries()
        .iter()
        .find(|e| matches!(&e.op, EtlOp::PlanRewrite { stage, .. } if stage == "compile-time"))
        .map(|e| e.seq)
        .expect("compile-time rewrite logged");
    let runtime_seq = log
        .entries()
        .iter()
        .find(|e| matches!(&e.op, EtlOp::PlanRewrite { stage, .. } if stage == "run-time"))
        .map(|e| e.seq)
        .expect("run-time rewrite logged");
    assert!(compile_seq < runtime_seq);
}

#[test]
fn item5_observing_files_extracted() {
    let repo = figure1_repo("cap5", 512);
    let wh = Warehouse::open_lazy(&repo.root, WarehouseConfig::default()).unwrap();
    let out = wh.query(FIGURE1_Q1).unwrap();
    assert_eq!(out.report.files_extracted.len(), 1);
    let uri = &out.report.files_extracted[0];
    assert!(uri.contains("ISK"), "query targets ISK: {uri}");
    assert!(uri.contains("BHE"));
    // The file covering 22:15 is the second file (22:15:00 window).
    assert!(uri.contains("2215") || uri.contains("2210"), "{uri}");
}

#[test]
fn item7_observing_cache_contents_and_updates() {
    let repo = figure1_repo("cap7", 512);
    let wh = Warehouse::open_lazy(&repo.root, WarehouseConfig::default()).unwrap();
    assert!(wh.cache_snapshot().entries.is_empty());
    wh.query(FIGURE1_Q1).unwrap();
    let snap = wh.cache_snapshot();
    assert_eq!(snap.entries.len(), 1, "one record cached");
    assert!(snap.used_bytes > 0);
    assert!(snap.used_bytes <= snap.budget_bytes);
    // A repository update flips the entry to stale; the next query drops
    // and repopulates it. Touch exactly the file the query reads.
    let mut r = Repository::open(&repo.root).unwrap();
    let warm = wh.query(FIGURE1_Q1).unwrap().report; // warm run: hits only
    assert_eq!(warm.cache_hits, 1);
    let first = wh.query(FIGURE1_Q1).unwrap();
    assert!(first.report.files_extracted.is_empty(), "still warm");
    let target = snap.entries[0].key.0; // file_id of the cached record
    let target = r
        .files()
        .iter()
        .find(|f| f.id.0 as i64 == target)
        .unwrap()
        .uri
        .clone();
    updates::touch(&mut r, &target).unwrap();
    let out = wh.query(FIGURE1_Q1).unwrap();
    // auto_refresh saw the mtime change and reloaded the file's metadata,
    // invalidating the cache; the query re-extracted.
    assert!(out.report.refresh.is_some());
    assert_eq!(out.report.records_extracted, 1);
}

#[test]
fn item8_operations_log_order() {
    let repo = figure1_repo("cap8", 512);
    let wh = Warehouse::open_lazy(&repo.root, WarehouseConfig::default()).unwrap();
    wh.query(FIGURE1_Q1).unwrap();
    let log = wh.etl_log();
    // Expected phases in order: metadata loads, query start, compile
    // rewrite, extraction, runtime rewrite, query finish.
    let kinds: Vec<&'static str> = log
        .entries()
        .iter()
        .map(|e| match &e.op {
            EtlOp::MetadataLoad { .. } => "meta",
            EtlOp::QueryStart { .. } => "qstart",
            EtlOp::PlanRewrite { stage, .. } if stage == "compile-time" => "compile",
            EtlOp::PlanRewrite { .. } => "runtime",
            EtlOp::Extract { .. } => "extract",
            EtlOp::QueryFinish { .. } => "qfinish",
            _ => "other",
        })
        .collect();
    let pos = |k: &str| kinds.iter().position(|&x| x == k).unwrap_or(usize::MAX);
    assert!(pos("meta") < pos("qstart"), "{kinds:?}");
    assert!(pos("qstart") < pos("compile"));
    assert!(pos("compile") < pos("extract"));
    assert!(pos("extract") < pos("runtime"));
    assert!(pos("runtime") < pos("qfinish"));
    // Rendering shows sequence numbers and timestamps.
    let rendered = wh.etl_log_render();
    assert!(rendered.contains("QueryFinish"));
    assert!(rendered.contains("t+"));
}

#[test]
fn plan_preview_shows_stages_without_extraction() {
    let repo = figure1_repo("preview", 512);
    let wh = Warehouse::open_lazy(
        &repo.root,
        WarehouseConfig {
            auto_refresh: false,
            ..Default::default()
        },
    )
    .unwrap();
    let stages = wh.plan_preview(FIGURE1_Q1).unwrap();
    assert_eq!(stages.len(), 2);
    assert_eq!(stages[0].0, "logical");
    assert_eq!(stages[1].0, "optimized");
    assert!(
        stages[1].1.contains("ExternalScan") || stages[1].1.contains("external"),
        "the data side is still external before run time:\n{}",
        stages[1].1
    );
    // Nothing happened: no cache traffic, no log entries beyond attach.
    assert!(wh.cache_snapshot().entries.is_empty());
    assert_eq!(
        wh.etl_log()
            .count_matching(|op| matches!(op, EtlOp::Extract { .. })),
        0
    );
    // Bad SQL errors cleanly.
    assert!(wh.plan_preview("SELEC nope").is_err());
}
